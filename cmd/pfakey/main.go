// pfakey demonstrates offline persistent fault analysis: it simulates a
// victim encrypting under a single-bit S-box fault, then recovers the key
// from ciphertexts alone, reporting the residual key entropy as data
// accumulates.
package main

import (
	"flag"
	"fmt"
	"os"

	"explframe/internal/cipher/aes"
	"explframe/internal/cipher/present"
	"explframe/internal/fault/pfa"
	"explframe/internal/stats"
)

func main() {
	seed := flag.Uint64("seed", 1, "key/plaintext seed")
	cipher := flag.String("cipher", "aes", "cipher: aes or present")
	entry := flag.Int("entry", 0x42, "S-box entry index to fault")
	bit := flag.Int("bit", 3, "bit to flip in the entry")
	budget := flag.Int("budget", 8000, "maximum ciphertexts")
	known := flag.Bool("known-fault", true, "attacker knows the faulted entry (ExplFrame's position)")
	flag.Parse()

	rng := stats.NewRNG(*seed)
	switch *cipher {
	case "aes":
		runAES(rng, *entry, *bit, *budget, *known)
	case "present":
		runPresent(rng, *entry%16, *bit%4, *budget)
	default:
		fmt.Fprintf(os.Stderr, "unknown cipher %q\n", *cipher)
		os.Exit(2)
	}
}

func runAES(rng *stats.RNG, entry, bit, budget int, known bool) {
	key := make([]byte, 16)
	rng.Bytes(key)
	ks, err := aes.Expand(key)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	faulty := aes.SBox()
	yStar := faulty[entry]
	faulty[entry] ^= 1 << uint(bit)
	fmt.Printf("AES-128 victim, fault: S[%#02x] %#02x -> %#02x (bit %d)\n", entry, yStar, faulty[entry], bit)

	// A clean pair for the unknown-fault path (pre-attack traffic).
	sb := aes.SBox()
	cleanPT := make([]byte, 16)
	rng.Bytes(cleanPT)
	cleanCT := make([]byte, 16)
	aes.EncryptBlock(ks, &sb, cleanCT, cleanPT)

	col := pfa.NewAESCollector()
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	for n := 1; n <= budget; n++ {
		rng.Bytes(pt)
		aes.EncryptBlock(ks, &faulty, ct, pt)
		if err := col.Observe(ct); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if n%500 == 0 {
			fmt.Printf("  n=%5d residual entropy %6.1f bits\n", n, col.ResidualEntropy())
		}
		if n%250 != 0 {
			continue
		}
		var master [16]byte
		if known {
			master, err = col.RecoverMasterKnownFault(yStar)
		} else {
			master, err = col.RecoverMasterUnknownFault(cleanPT, cleanCT)
		}
		if err == nil {
			fmt.Printf("\nkey recovered after %d ciphertexts: %x\n", n, master)
			if string(master[:]) != string(key) {
				fmt.Println("MISMATCH with victim key!")
				os.Exit(1)
			}
			fmt.Println("matches the victim key.")
			return
		}
	}
	fmt.Printf("\nnot recovered within %d ciphertexts (entropy %.1f bits)\n", budget, col.ResidualEntropy())
	os.Exit(1)
}

func runPresent(rng *stats.RNG, entry, bit, budget int) {
	key := make([]byte, 10)
	rng.Bytes(key)
	ks, err := present.Expand(key)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	faulty := present.SBox()
	yStar := faulty[entry]
	faulty[entry] ^= byte(1 << uint(bit))
	fmt.Printf("PRESENT-80 victim, fault: S[%#x] %#x -> %#x (bit %d)\n", entry, yStar, faulty[entry], bit)

	sb := present.SBox()
	cleanPT := rng.Uint64()
	cleanCT := present.Encrypt(ks, &sb, cleanPT)

	col := pfa.NewPresentCollector()
	for n := 1; n <= budget; n++ {
		col.Observe(present.Encrypt(ks, &faulty, rng.Uint64()))
		if n%25 != 0 {
			continue
		}
		fmt.Printf("  n=%5d residual entropy %5.1f bits\n", n, col.ResidualEntropy())
		got, err := col.RecoverMasterKnownFault(yStar, cleanPT, cleanCT)
		if err == nil {
			fmt.Printf("\nkey recovered after %d ciphertexts: %x\n", n, got)
			if string(got) != string(key) {
				fmt.Println("MISMATCH with victim key!")
				os.Exit(1)
			}
			fmt.Println("matches the victim key.")
			return
		}
	}
	fmt.Printf("\nnot recovered within %d ciphertexts\n", budget)
	os.Exit(1)
}
