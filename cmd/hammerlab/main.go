// hammerlab characterises the simulated DRAM module the way a Rowhammer
// templating tool does: it fills a buffer, hammers every row, and reports
// each flippable bit with its location, polarity, and reproducibility.
package main

import (
	"flag"
	"fmt"
	"os"

	"explframe/internal/dram"
	"explframe/internal/kernel"
	"explframe/internal/rowhammer"
)

func main() {
	seed := flag.Uint64("seed", 1, "weak-cell placement seed")
	megabytes := flag.Int("mb", 8, "buffer size to template (MiB)")
	budget := flag.Int("budget", 10000, "hammer pairs per row")
	density := flag.Float64("density", 8e-5, "weak-cell density")
	single := flag.Bool("single", false, "use single-sided hammering")
	decoys := flag.Int("decoys", 0, "many-sided decoy rows (enables the TRR-bypass pattern)")
	trr := flag.Bool("trr", false, "enable the TRR mitigation (tracker 4, threshold 300)")
	repro := flag.Int("repro", 5, "reproducibility runs per flip site (0 to skip)")
	flag.Parse()

	cfg := kernel.DefaultConfig()
	cfg.Seed = *seed
	cfg.FaultModel = dram.FaultModel{
		WeakCellDensity: *density,
		BaseThreshold:   4000,
		ThresholdSpread: 1.5,
		NeighbourWeight: 0.25,
		RefreshInterval: 1 << 21,
		FlipReliability: 0.98,
	}
	if *trr {
		cfg.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 300}
	}
	m, err := kernel.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	proc, err := m.Spawn("hammerlab", 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	length := uint64(*megabytes) << 20
	base, err := proc.Mmap(length)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := proc.Touch(base, length); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mode := rowhammer.DoubleSided
	if *single {
		mode = rowhammer.SingleSided
	}
	if *decoys > 0 {
		mode = rowhammer.ManySided
	}
	eng := rowhammer.New(rowhammer.Config{Mode: mode, PairHammerCount: *budget, Decoys: *decoys}, m, proc)

	fmt.Printf("templating %d MiB, %s, %d pairs/row, density %g, seed %d\n",
		*megabytes, mode, *budget, *density, *seed)
	flips, err := eng.Template(base, length)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := eng.Stats()
	fmt.Printf("rows scanned: %d, activations: %d, flips: %d\n\n", st.RowsScanned, st.Activations, len(flips))

	fmt.Printf("%-5s %-12s %-4s %-9s %-10s %s\n", "site", "page_offset", "bit", "polarity", "row", "repro")
	for i, f := range flips {
		polarity := "1->0"
		pattern := rowhammer.PatternOnes
		if f.From == 0 {
			polarity = "0->1"
			pattern = rowhammer.PatternZeros
		}
		reproStr := "-"
		if *repro > 0 {
			ok := 0
			for r := 0; r < *repro; r++ {
				m.DRAM().Refresh()
				re, err := eng.Reproduce(f, pattern)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if re {
					ok++
				}
			}
			reproStr = fmt.Sprintf("%d/%d", ok, *repro)
		}
		fmt.Printf("%-5d %-12d %-4d %-9s %-10d %s\n", i, f.ByteInPage, f.Bit, polarity, f.Agg.VictimRow, reproStr)
	}
	if len(flips) == 0 {
		fmt.Println("(no flips — module too sound for this budget)")
	}
}
