// explframed serves ExplFrame campaigns as a long-running HTTP service.
//
// Usage:
//
//	explframed [-addr host:port] [-journal file] [-store dir]
//	           [-parallel n] [-spec-workers n]
//
// The server accepts the same strict-JSON scenario and campaign specs the
// explframe CLI loads (POST /v1/campaigns), shards trials across a bounded
// worker fleet, streams per-trial results as JSON lines
// (GET /v1/campaigns/{id}/stream), and checkpoints every completed trial
// to the append-only journal.  A killed or restarted server resumes
// unfinished campaigns from the journal without recomputing journaled
// trials; completed campaign tables persist in the store directory in the
// docs/results.json shape.  See `explframe submit` and `explframe watch`
// for the matching client.
//
// On SIGINT or SIGTERM the server shuts down gracefully: in-flight trials
// are cancelled via context, the final checkpoint is flushed, and the
// process exits 0.
//
// Exit codes: 0 clean shutdown, 1 server error, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"explframe/internal/service"
)

func main() { os.Exit(run(os.Args[1:])) }

// run is the testable body of main.
func run(args []string) int {
	fs := flag.NewFlagSet("explframed", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8750", "listen address")
	journal := fs.String("journal", "explframed.journal.jsonl",
		"append-only checkpoint journal; restarting on the same journal resumes unfinished campaigns")
	store := fs.String("store", "explframed-store",
		"directory completed campaign tables persist to (docs/results.json shape)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"trial workers per spec; results are identical at any value (deterministic per-trial streams)")
	specWorkers := fs.Int("spec-workers", 1, "member specs of one campaign run concurrently")
	switch err := fs.Parse(args); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "explframed: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	logger := log.New(os.Stderr, "explframed: ", log.LstdFlags)
	srv, err := service.New(service.Config{
		Journal:      *journal,
		Store:        *store,
		TrialWorkers: *parallel,
		SpecWorkers:  *specWorkers,
		Log:          logger,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		srv.Shutdown()
		return 1
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("listening on http://%s (journal %s, store %s)", ln.Addr(), *journal, *store)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Print("signal received, shutting down")
		// Cancel campaigns and flush the final checkpoint first, so the
		// still-attached streams end and the HTTP drain below is quick.
		if err := srv.Shutdown(); err != nil {
			logger.Print(err)
		}
		drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(drain); err != nil {
			logger.Print(err)
		}
		logger.Print("journal flushed, bye")
		return 0
	case err := <-serveErr:
		logger.Print(err)
		srv.Shutdown()
		return 1
	}
}
