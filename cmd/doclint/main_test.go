package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a Go source file into dir.
func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintDirFindings(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `// Package demo is documented.
package demo

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Exposed struct{}

// Grouped constants share the declaration doc.
const (
	A = 1
	B = 2
)

var Naked = 3

func unexported() {}

func (Exposed) Method() {}

type hidden struct{}

func (hidden) Exported() {} // method on unexported type: internal API
`)
	findings, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		// Strip the tempdir prefix for stable comparison.
		got = append(got, f[strings.LastIndex(f, string(filepath.Separator))+1:])
	}
	// lintDir sorts findings lexically, so two-digit lines precede
	// single-digit ones.
	want := []string{
		"a.go:17: exported var Naked is undocumented",
		"a.go:21: exported method Method is undocumented",
		"a.go:7: exported function Undocumented is undocumented",
		"a.go:9: exported type Exposed is undocumented",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestLintDirMissingPackageComment(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", "package nodoc\n")
	findings, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "no package comment") {
		t.Errorf("findings = %v", findings)
	}
}

// Test files are exempt: exported test helpers document themselves through
// the tests that use them.
func TestLintDirSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", "// Package demo.\npackage demo\n")
	write(t, dir, "a_test.go", "package demo\n\nfunc Helper() {}\n")
	findings, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("findings = %v", findings)
	}
}

func TestExpandWalksRecursively(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "inner")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, root, "a.go", "// Package a.\npackage a\n")
	write(t, sub, "b.go", "// Package b.\npackage b\n")
	write(t, root, "ignored.txt", "not go")

	dirs, err := expand([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 || dirs[0] != root || dirs[1] != sub {
		t.Errorf("expand = %v, want [%s %s]", dirs, root, sub)
	}

	// Non-recursive: only the named directory.
	dirs, err = expand([]string{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != root {
		t.Errorf("expand = %v", dirs)
	}
}
