// doclint is the repository's godoc comment lint: it fails when a package
// lacks a package comment or an exported top-level identifier lacks a doc
// comment, the revive/stylecheck subset this repo enforces in CI without
// external dependencies.
//
// Usage:
//
//	doclint ./internal/... ./cmd/...
//
// Patterns ending in /... are walked recursively; test files are exempt
// (their exported helpers document themselves through the tests).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint ./dir [./dir/... ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	dirs, err := expand(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", len(findings))
		os.Exit(1)
	}
}

// expand resolves argument patterns into the sorted set of directories that
// contain non-test Go files; "dir/..." walks recursively.
func expand(args []string) ([]string, error) {
	seen := map[string]bool{}
	add := func(dir string) error {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				seen[dir] = true
				return nil
			}
		}
		return nil
	}
	for _, arg := range args {
		if root, ok := strings.CutSuffix(arg, "/..."); ok {
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					return add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := add(arg); err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// lintDir parses one package directory and reports undocumented exported
// declarations.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doclint: parsing %s: %w", dir, err)
	}
	var findings []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil && len(strings.TrimSpace(file.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, file := range pkg.Files {
			findings = append(findings, lintFile(fset, name, file)...)
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// lintFile reports the file's undocumented exported top-level declarations:
// functions and methods, type specs, and const/var specs (a group doc on
// the declaration covers all of its specs).
func lintFile(fset *token.FileSet, name string, file *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, what, ident string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, what, ident))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedRecv(d) {
				continue
			}
			if d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					kind := "const"
					if d.Tok == token.VAR {
						kind = "var"
					}
					for _, id := range s.Names {
						if id.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(id.Pos(), kind, id.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// exportedRecv reports whether a declaration's receiver (if any) names an
// exported type: methods on unexported types are internal API.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
