package main

import (
	"os"
	"path/filepath"
	"testing"

	"explframe/internal/machine"
	"explframe/internal/scenario"
)

// The unified describe contract: presets, spec files and machine profiles
// all resolve; names in neither namespace exit 2; the explicit `describe
// machine <name>` form rejects unknown machines the same way.
func TestDescribeResolution(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"preset", []string{"baseline"}, 0},
		{"cache preset", []string{"prime-probe"}, 0},
		{"machine fallback", []string{"ddr4"}, 0},
		{"machine explicit", []string{"machine", "server-1g"}, 0},
		{"unknown name", []string{"not-a-thing"}, 2},
		{"unknown machine", []string{"machine", "not-a-thing"}, 2},
		{"bad arity", []string{"a", "b", "c"}, 2},
		{"wrong keyword", []string{"profile", "ddr4"}, 2},
		{"no args", []string{}, 2},
	}
	for _, tc := range cases {
		if got := cmdDescribe(tc.args); got != tc.want {
			t.Errorf("describe %v: exit %d, want %d", tc.args, got, tc.want)
		}
	}
}

// A spec file that exists but fails validation must exit 2 and a parse
// failure must not fall through to the machine namespace.
func TestDescribeSpecFiles(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.json")
	spec := scenario.New(scenario.WithProfile("ddr4"), scenario.WithTrials(2))
	data, err := spec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cmdDescribe([]string{good}); got != 0 {
		t.Errorf("valid spec file: exit %d", got)
	}

	invalid := filepath.Join(dir, "invalid.json")
	bad := scenario.New(scenario.WithTrials(-1))
	data, err = bad.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(invalid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cmdDescribe([]string{invalid}); got != 2 {
		t.Errorf("invalid spec file: exit %d", got)
	}

	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte(`{"kind":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cmdDescribe([]string{garbled}); got != 2 {
		t.Errorf("garbled spec file: exit %d", got)
	}
}

// list must succeed in both forms and print every registered machine.
func TestListRuns(t *testing.T) {
	if got := cmdList(nil); got != 0 {
		t.Errorf("list: exit %d", got)
	}
	if got := cmdList([]string{"-machines"}); got != 0 {
		t.Errorf("list -machines: exit %d", got)
	}
	if got := cmdList([]string{"-cache-presets"}); got != 0 {
		t.Errorf("list -cache-presets: exit %d", got)
	}
	if got := cmdList([]string{"-no-such-flag"}); got != 2 {
		t.Errorf("list with bad flag: exit %d", got)
	}
}

// The -machine flag override must reach the lowered spec, replacing an
// inline machine as documented.
func TestMachineFlagOverride(t *testing.T) {
	f := newFlags("test")
	if code, ok := f.parse([]string{"-machine", "trr-hardened", "-trials", "3"}); !ok {
		t.Fatalf("parse failed with code %d", code)
	}
	camp, err := f.campaign()
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Specs) != 1 || camp.Specs[0].MachineName() != "trr-hardened" {
		t.Fatalf("campaign = %+v", camp)
	}
	ms, err := camp.Specs[0].MachineSpec()
	if err != nil {
		t.Fatal(err)
	}
	if ms.Hash() != machine.MustGet("trr-hardened").Hash() {
		t.Fatal("resolved machine is not the registered profile")
	}
}
