package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/stats"
)

// cmdSweep runs a scenario (or a whole campaign file) over many trials and
// renders the aggregate table in any report format.  Progress goes to
// stderr; the rendered table is byte-identical at any -parallel value (the
// repo's determinism contract).  SIGINT cancels the campaign mid-flight.
// A single attack-kind scenario renders the per-phase table and exits 1
// when no trial recovered the key (legacy behaviour scripts rely on);
// multi-spec campaigns render one row per scenario and exit 0 unless a
// spec errors.  Duplicate specs in a campaign file are run as written —
// only warned about — since the file is the user's explicit request.
func cmdSweep(args []string) int {
	f := newFlags("sweep")
	if code, ok := f.parse(args); !ok {
		return code
	}
	fmtOut, err := report.ParseFormat(f.format)
	if err != nil {
		return fail(err)
	}
	camp, err := f.campaign()
	if err != nil {
		return fail(err)
	}
	if deduped := camp.Dedup(); len(deduped.Specs) < len(camp.Specs) {
		fmt.Fprintf(os.Stderr, "warning: campaign %q contains %d semantically duplicate spec(s) (same canonical hash); running all as written\n",
			camp.Name, len(camp.Specs)-len(deduped.Specs))
	}
	if err := camp.Validate(); err != nil {
		return fail(fmt.Errorf("campaign %q invalid:\n%w", camp.Name, err))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	results, err := camp.Run(ctx,
		scenario.WithTrialOptions(harness.WithWorkers(f.parallel)),
		scenario.WithProgress(func(e scenario.Event) {
			// Events are self-identifying: the spec's canonical hash names
			// the same scenario in journals, streams and checkpoints.
			if e.Done {
				status := "done"
				if e.Err != nil {
					status = fmt.Sprintf("failed: %v", e.Err)
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %s #%016x %s\n", e.Index+1, e.Total, e.Spec.Title(), e.SpecHash, status)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s #%016x: %d trials...\n", e.Index+1, e.Total, e.Spec.Title(), e.SpecHash, e.Spec.Trials)
		}))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep error: %v\n", err)
		return 1
	}

	var t *report.Table
	singleAttack := len(results) == 1 && results[0].Spec.Kind == scenario.Attack
	if singleAttack {
		t = attackSweepTable(results[0])
	} else {
		t = scenario.CampaignTable(camp.Name, results)
	}
	// Wall time and worker count go to stderr, not the table: rendered
	// sweep output must be byte-identical at any -parallel.
	fmt.Fprintf(os.Stderr, "%d scenario(s) in %.1fs (workers=%d)\n", len(results), time.Since(start).Seconds(), f.parallel)

	rendered, err := report.Render(t, fmtOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "render: %v\n", err)
		return 1
	}
	if f.out != "" {
		if err := os.WriteFile(f.out, []byte(rendered), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", f.out)
	} else {
		fmt.Print(rendered)
	}
	if singleAttack && results[0].AttackStats().Key.Successes == 0 {
		return 1
	}
	return 0
}

// attackSweepTable renders the per-phase success rates of one attack
// scenario — the classic multi-trial view of the single-run report.
func attackSweepTable(res *scenario.Result) *report.Table {
	spec := res.Spec
	st := res.AttackStats()
	t := &report.Table{
		ID:    "sweep",
		Title: fmt.Sprintf("per-phase success over %d trials (%s victim, seed %d)", spec.Trials, spec.CipherName(), spec.Seed),
		Claim: "multi-trial view of the end-to-end pipeline: template → plant → steer → re-hammer → PFA",
		Columns: []report.Column{
			{Name: "phase"}, {Name: "event"},
			{Name: "successes"}, {Name: "trials"}, {Name: "rate", Unit: "fraction"},
		},
	}
	for _, row := range []struct {
		phase, event string
		p            stats.Proportion
	}{
		{"template", "usable site found", st.Site},
		{"steer", "frame steered to victim", st.Steer},
		{"rehammer", "fault planted in table", st.Fault},
		{"analyse", "key recovered", st.Key},
	} {
		t.AddRow(report.Str(row.phase), report.Str(row.event),
			report.Int(row.p.Successes), report.Int(row.p.Trials), report.Float(row.p.Rate(), 3))
	}
	if st.Ciphertexts.N() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("ciphertexts to recovery: %s", st.Ciphertexts.String()))
	}
	return t
}
