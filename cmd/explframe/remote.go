package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/service"
)

// cmdSubmit posts a scenario or campaign to a running explframed server.
// It shares the full scenario flag surface with run/sweep (-scenario
// preset/file plus field overrides), prints the campaign id — the handle
// watch and the HTTP API use — to stdout, and exits immediately; the
// server keeps executing.  Submission is idempotent: resubmitting an
// already-known campaign reports its current status instead of
// restarting it.
func cmdSubmit(args []string) int {
	f := newFlags("submit")
	addr := f.fs.String("addr", "http://127.0.0.1:8750", "explframed base URL")
	if code, ok := f.parse(args); !ok {
		return code
	}
	camp, err := f.campaign()
	if err != nil {
		return fail(err)
	}
	return runSubmit(*addr, camp, os.Stdout)
}

// runSubmit is the testable body of cmdSubmit.
func runSubmit(addr string, camp scenario.Campaign, w io.Writer) int {
	c := &service.Client{Base: addr}
	st, err := c.Submit(context.Background(), camp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "campaign %s (%q): %d spec(s), %d trials, status %s\n",
		st.ID, st.Name, st.Specs, st.TotalTrials, st.Status)
	fmt.Fprintln(w, st.ID)
	return 0
}

// cmdWatch follows a submitted campaign's stream, writing one JSON line
// per completed trial to stdout (journaled history first, then live
// results) and ending with the terminal status line.  With -report it
// then fetches the persisted campaign table — validated through
// report.FromJSON — and prints it.  Exit codes: 0 campaign done, 1
// campaign failed or cancelled (or the stream broke), 2 usage error.
func cmdWatch(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8750", "explframed base URL")
	withReport := fs.Bool("report", false, "after completion, print the persisted campaign table JSON")
	switch err := fs.Parse(args); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: explframe watch [-addr URL] [-report] <campaign-id>")
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return runWatch(ctx, *addr, fs.Arg(0), *withReport, os.Stdout)
}

// runWatch is the testable body of cmdWatch.
func runWatch(ctx context.Context, addr, id string, withReport bool, w io.Writer) int {
	c := &service.Client{Base: addr}
	enc := json.NewEncoder(w)
	final, err := c.Stream(ctx, id, func(l service.StreamLine) error {
		return enc.Encode(l)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := enc.Encode(final); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if final.Status != "done" {
		fmt.Fprintf(os.Stderr, "campaign %s ended %s", id, final.Status)
		if final.Error != "" {
			fmt.Fprintf(os.Stderr, ": %s", final.Error)
		}
		fmt.Fprintln(os.Stderr)
		return 1
	}
	if withReport {
		t, err := c.Report(ctx, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		data, err := report.JSON(t)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(w, "%s\n", data)
	}
	return 0
}
