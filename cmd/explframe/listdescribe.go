package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"explframe/internal/cipher/registry"
	"explframe/internal/scenario"
)

// parseBare handles a flagless subcommand's argument list, mapping -h onto
// exit 0.
func parseBare(fs *flag.FlagSet, args []string) (code int, ok bool) {
	switch err := fs.Parse(args); {
	case err == nil:
		return 0, true
	case errors.Is(err, flag.ErrHelp):
		return 0, false
	default:
		return 2, false
	}
}

// cmdList prints the built-in scenario presets and the registered ciphers —
// everything -scenario and -cipher accept by name.
func cmdList(args []string) int {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	if code, ok := parseBare(fs, args); !ok {
		return code
	}
	fmt.Println("Scenario presets (run with: explframe run -scenario <name>):")
	for _, p := range scenario.Presets() {
		fmt.Printf("  %-12s %s\n", p.Name, p.Description)
	}
	fmt.Printf("\nRegistered ciphers (-cipher): %s\n", strings.Join(registry.Names(), ", "))
	fmt.Println("\nDescribe any preset or spec file with: explframe describe <name|file.json>")
	return 0
}

// cmdDescribe resolves a preset name or spec/campaign file and prints each
// member scenario's canonical name, hash, validation verdict and JSON —
// the ground truth of what `run`/`sweep` would execute.
func cmdDescribe(args []string) int {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	if code, ok := parseBare(fs, args); !ok {
		return code
	}
	if fs.NArg() != 1 {
		return fail(fmt.Errorf("usage: explframe describe <preset|spec.json>"))
	}
	camp, err := loadScenario(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	if len(camp.Specs) > 1 {
		fmt.Printf("campaign %q: %d scenarios\n\n", camp.Name, len(camp.Specs))
	}
	code := 0
	for i, spec := range camp.Specs {
		if len(camp.Specs) > 1 {
			fmt.Printf("--- spec %d ---\n", i)
		}
		fmt.Printf("name:  %s\n", spec.Name())
		fmt.Printf("hash:  %016x\n", spec.Hash())
		if err := spec.Validate(); err != nil {
			fmt.Printf("valid: NO\n%v\n", err)
			code = 2
		} else {
			fmt.Println("valid: yes")
		}
		data, err := spec.EncodeJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		os.Stdout.Write(data)
	}
	return code
}
