package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"explframe/internal/cipher/registry"
	"explframe/internal/fault"
	"explframe/internal/fault/dfa"
	"explframe/internal/machine"
	"explframe/internal/scenario"
)

// parseBare handles a flagless subcommand's argument list, mapping -h onto
// exit 0.
func parseBare(fs *flag.FlagSet, args []string) (code int, ok bool) {
	switch err := fs.Parse(args); {
	case err == nil:
		return 0, true
	case errors.Is(err, flag.ErrHelp):
		return 0, false
	default:
		return 2, false
	}
}

// cmdList prints the catalogues behind every name the CLI accepts: scenario
// presets (-scenario), cache-probe presets (their own section — a different
// attacker primitive than the Rowhammer scenarios), machine profiles
// (-machine / spec "profile"), declarative fault models (the "fault" field
// of DFA-kind specs) and registered ciphers (-cipher), under section
// headers.  -machines, -fault-models and -cache-presets restrict the output
// to one section for scripting.
func cmdList(args []string) int {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	machinesOnly := fs.Bool("machines", false, "list only the registered machine profiles")
	faultsOnly := fs.Bool("fault-models", false, "list only the fault-model presets and DFA analyzers")
	cachesOnly := fs.Bool("cache-presets", false, "list only the cache-probe scenario presets")
	if code, ok := parseBare(fs, args); !ok {
		return code
	}
	all := !*machinesOnly && !*faultsOnly && !*cachesOnly
	if all {
		fmt.Println("Scenario presets (run with: explframe run -scenario <name>):")
		for _, p := range scenario.Presets() {
			if p.Spec.Kind == scenario.CacheProbe {
				continue // listed under their own section below
			}
			fmt.Printf("  %-14s %s\n", p.Name, p.Description)
		}
		fmt.Println()
	}
	if all || *cachesOnly {
		fmt.Println("Cache-probe presets (run with: explframe run -scenario <name>):")
		for _, p := range scenario.CachePresets() {
			fmt.Printf("  %-16s %s\n", p.Name, p.Description)
		}
	}
	if all {
		fmt.Println()
	}
	if all || *machinesOnly {
		fmt.Println("Machine profiles (run with: explframe run -machine <name>):")
		for _, name := range machine.Names() {
			ms := machine.MustGet(name)
			fmt.Printf("  %-14s %4d MiB, %d cpus, %s mapper — %s\n",
				name, ms.Geometry.TotalBytes()>>20, ms.CPUs, ms.MapperName(), ms.Description)
		}
	}
	if all {
		fmt.Println()
	}
	if all || *faultsOnly {
		fmt.Println("Fault models (the \"fault\" field of dfa-kind scenarios):")
		for _, p := range fault.Presets() {
			fmt.Printf("  %-14s %s\n", p.Name, p.Description)
		}
		fmt.Println("\nDFA analyzers (ladder strongest-first):")
		for _, name := range dfa.Names() {
			a := dfa.MustGet(name)
			rungs := make([]string, 0, len(a.Ladder()))
			for _, m := range a.Ladder() {
				rungs = append(rungs, m.Name())
			}
			fmt.Printf("  %-14s round %d: %s\n", name, a.DefaultRound(), strings.Join(rungs, " > "))
		}
	}
	if !all {
		return 0
	}
	fmt.Printf("\nRegistered ciphers (-cipher): %s\n", strings.Join(registry.Names(), ", "))
	fmt.Println("\nDescribe any of them with: explframe describe <name|file.json> or explframe describe machine <name>")
	return 0
}

// cmdDescribe resolves a name to its canonical JSON: `describe machine X`
// prints the machine profile X; `describe X` tries scenario presets and
// spec/campaign files first and falls back to machine profiles, then to
// fault-model presets, so every name `list` prints is describable.  Unknown
// names exit 2 with the usage contract's "not a scenario, machine or fault
// model" report.
func cmdDescribe(args []string) int {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	if code, ok := parseBare(fs, args); !ok {
		return code
	}
	switch fs.NArg() {
	case 1:
		ref := fs.Arg(0)
		if p, ok := scenario.LookupPreset(ref); ok {
			return describeCampaign(scenario.Campaign{Name: p.Name, Specs: []scenario.Spec{p.Spec}})
		}
		if _, err := os.Stat(ref); err == nil {
			// An existing file must parse as a spec/campaign; a parse error
			// is the diagnosis, not a reason to try other namespaces.
			camp, err := scenario.LoadCampaign(ref)
			if err != nil {
				return fail(err)
			}
			return describeCampaign(camp)
		}
		if ms, ok := machine.Get(ref); ok {
			return describeMachine(ms)
		}
		if p, ok := fault.LookupPreset(ref); ok {
			return describeFaultModel(p)
		}
		return fail(fmt.Errorf("%q is not a scenario (preset or spec file), machine or fault model; see 'explframe list'", ref))
	case 2:
		if fs.Arg(0) != "machine" {
			return fail(fmt.Errorf("usage: explframe describe <preset|spec.json> | explframe describe machine <name>"))
		}
		ms, ok := machine.Get(fs.Arg(1))
		if !ok {
			return fail(fmt.Errorf("machine %q is not registered (known: %s)",
				fs.Arg(1), strings.Join(machine.Names(), ", ")))
		}
		return describeMachine(ms)
	default:
		return fail(fmt.Errorf("usage: explframe describe <preset|spec.json> | explframe describe machine <name>"))
	}
}

// describeCampaign prints each member scenario's canonical name, hash,
// validation verdict and JSON — the ground truth of what `run`/`sweep`
// would execute.
func describeCampaign(camp scenario.Campaign) int {
	if len(camp.Specs) > 1 {
		fmt.Printf("campaign %q: %d scenarios\n\n", camp.Name, len(camp.Specs))
	}
	code := 0
	for i, spec := range camp.Specs {
		if len(camp.Specs) > 1 {
			fmt.Printf("--- spec %d ---\n", i)
		}
		fmt.Printf("name:  %s\n", spec.Name())
		fmt.Printf("hash:  %016x\n", spec.Hash())
		if err := spec.Validate(); err != nil {
			fmt.Printf("valid: NO\n%v\n", err)
			code = 2
		} else {
			fmt.Println("valid: yes")
		}
		data, err := spec.EncodeJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		os.Stdout.Write(data)
	}
	return code
}

// describeFaultModel prints one fault-model preset's identity, the
// analyzers whose ladders cover it, and its canonical JSON (pasteable into
// a dfa-kind scenario file's "fault" field).
func describeFaultModel(p fault.Preset) int {
	fmt.Printf("fault model: %s (%s)\n", p.Model.Name(), p.Description)
	fmt.Printf("hash:        %016x\n", p.Model.Hash())
	var supported []string
	for _, name := range dfa.Names() {
		if dfa.MustGet(name).Supports(p.Model) == nil {
			supported = append(supported, name)
		}
	}
	fmt.Printf("analyzers:   %s\n", strings.Join(supported, ", "))
	code := 0
	if err := p.Model.Validate(); err != nil {
		fmt.Printf("valid:       NO\n%v\n", err)
		code = 2
	} else {
		fmt.Println("valid:       yes")
	}
	data, err := p.Model.EncodeJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	os.Stdout.Write(data)
	return code
}

// describeMachine prints one machine profile's identity and canonical JSON
// (pasteable into a scenario file's "machine" field).  Registered specs
// are valid by construction (Register rejects anything else), but the
// verdict mirrors describeCampaign's exit-2 contract for symmetry and for
// any future non-registry source.
func describeMachine(ms machine.Spec) int {
	fmt.Printf("machine: %s\n", ms.CanonicalName())
	fmt.Printf("hash:    %016x\n", ms.Hash())
	fmt.Printf("mapper:  %s\n", ms.MapperName())
	g := ms.Geometry
	fmt.Printf("dram:    %d MiB (%dx%dx%d, %d banks x %d rows x %d B)\n",
		g.TotalBytes()>>20, g.Channels, g.DIMMs, g.Ranks, g.Banks, g.Rows, g.RowBytes)
	code := 0
	if err := ms.Validate(); err != nil {
		fmt.Printf("valid:   NO\n%v\n", err)
		code = 2
	} else {
		fmt.Println("valid:   yes")
	}
	data, err := ms.EncodeJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	os.Stdout.Write(data)
	return code
}
