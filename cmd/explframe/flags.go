package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"explframe/internal/cipher/registry"
	"explframe/internal/scenario"
)

// cliFlags is the shared scenario flag surface of run, sweep and the legacy
// alias.  Every flag maps onto one scenario.Spec field; flags the user
// explicitly set override the spec loaded from -scenario, field by field.
type cliFlags struct {
	fs *flag.FlagSet

	scenarioRef string
	machineRef  string
	seed        uint64
	trials      int
	parallel    int
	cipher      string
	noise       int
	noiseOps    int
	crossCPU    bool
	sleep       bool
	ciphertexts int
	budget      int
	trr         bool
	ecc         bool
	manySided   int
	format      string
	out         string
}

// newFlags builds the flag set for a subcommand.  The table-rendering
// flags (-format, -out) only take effect on the sweep path but parse
// everywhere, keeping run/sweep/legacy invocations interchangeable.
func newFlags(name string) *cliFlags {
	f := &cliFlags{fs: flag.NewFlagSet(name, flag.ContinueOnError)}
	f.fs.StringVar(&f.scenarioRef, "scenario", "", "scenario source: a preset name (see 'explframe list') or a JSON spec file")
	f.fs.StringVar(&f.machineRef, "machine", "",
		"machine profile the scenario runs on (see 'explframe list -machines'); overrides the spec's profile or inline machine")
	f.fs.Uint64Var(&f.seed, "seed", 1, "attack seed (weak cells, keys, noise)")
	f.fs.IntVar(&f.trials, "trials", 1, "independent trials; with the legacy interface, >1 switches to a sweep")
	f.fs.IntVar(&f.parallel, "parallel", runtime.GOMAXPROCS(0),
		"trial workers; results are identical at any value (deterministic per-trial streams)")
	f.fs.StringVar(&f.cipher, "cipher", "aes",
		fmt.Sprintf("victim cipher, any registered name or alias (%s)", strings.Join(registry.Names(), ", ")))
	f.fs.IntVar(&f.noise, "noise", 0, "noise processes churning on the victim CPU")
	f.fs.IntVar(&f.noiseOps, "noise-ops", 0, "allocation events the noise performs")
	f.fs.BoolVar(&f.crossCPU, "cross-cpu", false, "pin the victim to a different CPU (expected to defeat the attack)")
	f.fs.BoolVar(&f.sleep, "sleep", false, "attacker sleeps after planting (expected to defeat the attack)")
	f.fs.IntVar(&f.ciphertexts, "ciphertexts", 12000, "faulty ciphertext budget for PFA")
	f.fs.IntVar(&f.budget, "budget", 0,
		"per-trial work budget: probe measurements (cache-probe), ciphertexts (pfa) or pairs (dfa); 0 inherits the kind default")
	f.fs.BoolVar(&f.trr, "trr", false, "enable the TRR mitigation (tracker 4, threshold 300)")
	f.fs.BoolVar(&f.ecc, "ecc", false, "enable SEC-DED ECC")
	f.fs.IntVar(&f.manySided, "many-sided", 0, "use many-sided hammering with this many decoy rows (TRR bypass)")
	f.fs.StringVar(&f.format, "format", "text", "sweep output format: text, md, csv or json")
	f.fs.StringVar(&f.out, "out", "", "write the sweep table to this file instead of stdout")
	return f
}

// loadScenario resolves a -scenario reference: preset name first, then
// JSON file (campaign or single spec).
func loadScenario(ref string) (scenario.Campaign, error) {
	if p, ok := scenario.LookupPreset(ref); ok {
		return scenario.Campaign{Name: p.Name, Specs: []scenario.Spec{p.Spec}}, nil
	}
	if _, err := os.Stat(ref); err != nil {
		return scenario.Campaign{}, fmt.Errorf("-scenario %q is neither a preset (see 'explframe list') nor a readable file", ref)
	}
	return scenario.LoadCampaign(ref)
}

// campaign assembles the scenario(s) this invocation runs: the -scenario
// preset/file when given (flags explicitly set on the command line override
// each loaded spec field by field), the flag-built spec otherwise.
func (f *cliFlags) campaign() (scenario.Campaign, error) {
	overrides, err := f.overrides()
	if err != nil {
		return scenario.Campaign{}, err
	}
	if f.scenarioRef != "" {
		camp, err := loadScenario(f.scenarioRef)
		if err != nil {
			return scenario.Campaign{}, err
		}
		for i := range camp.Specs {
			camp.Specs[i] = camp.Specs[i].With(overrides...)
		}
		return camp, nil
	}
	spec := scenario.New(overrides...)
	return scenario.Campaign{Name: spec.Title(), Specs: []scenario.Spec{spec}}, nil
}

// overrides translates the flags the user explicitly set into spec options.
// Values the spec model cannot express (it treats 0 as "inherit the
// profile default") are rejected loudly rather than silently remapped.
func (f *cliFlags) overrides() ([]scenario.Option, error) {
	var opts []scenario.Option
	var err error
	f.fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "machine":
			opts = append(opts, scenario.WithProfile(scenario.Profile(f.machineRef)))
		case "seed":
			opts = append(opts, scenario.WithSeed(f.seed))
		case "trials":
			opts = append(opts, scenario.WithTrials(f.trials))
		case "cipher":
			opts = append(opts, scenario.WithCipher(f.cipher))
		case "noise":
			opts = append(opts, func(s *scenario.Spec) { s.Noise.Procs = f.noise })
		case "noise-ops":
			opts = append(opts, func(s *scenario.Spec) { s.Noise.Ops = f.noiseOps })
		case "cross-cpu":
			if f.crossCPU {
				opts = append(opts, scenario.WithCrossCPU())
			}
		case "sleep":
			if f.sleep {
				opts = append(opts, scenario.WithSleepingAttacker())
			}
		case "ciphertexts":
			if f.ciphertexts <= 0 {
				err = fmt.Errorf("-ciphertexts %d: the budget must be >= 1 (omit the flag for the default)", f.ciphertexts)
				return
			}
			opts = append(opts, scenario.WithCiphertexts(f.ciphertexts))
		case "budget":
			if f.budget <= 0 {
				err = fmt.Errorf("-budget %d: the budget must be >= 1 (omit the flag for the kind default)", f.budget)
				return
			}
			opts = append(opts, scenario.WithBudget(f.budget))
		case "trr":
			if f.trr {
				opts = append(opts, scenario.WithTRR(0, 0))
			}
		case "ecc":
			if f.ecc {
				opts = append(opts, scenario.WithECC())
			}
		case "many-sided":
			if f.manySided > 0 {
				opts = append(opts, scenario.WithManySided(f.manySided))
			}
		}
	})
	return opts, err
}

// parse runs the flag set and maps -h/-help onto a clean exit: code 0 and
// ok=false for help, code 2 and ok=false for a real parse error.
func (f *cliFlags) parse(args []string) (code int, ok bool) {
	switch err := f.fs.Parse(args); {
	case err == nil:
		return 0, true
	case errors.Is(err, flag.ErrHelp):
		return 0, false
	default:
		return 2, false
	}
}

// fail prints a usage-level error and returns exit code 2.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 2
}
