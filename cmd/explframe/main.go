// explframe drives ExplFrame attack scenarios on the simulated stack.
//
// Usage:
//
//	explframe run [flags]        run one scenario and print its report
//	explframe sweep [flags]      run a scenario or campaign sweep, render a table
//	explframe submit [flags]     post a scenario/campaign to an explframed server
//	explframe watch [flags] <id> stream a submitted campaign's per-trial results
//	explframe list [-machines]   list scenario/cache presets, machines, ciphers
//	explframe describe <what>    print a preset's, spec file's or machine's JSON
//	explframe describe machine <name>  print one machine profile's JSON
//	explframe [flags]            legacy alias for run (with -trials > 1: sweep)
//
// Scenarios come from three equivalent sources: legacy flags (-cipher,
// -noise, -trr, ...), built-in presets (see `explframe list`), and JSON
// spec files (-scenario spec.json).  All three construct the same
// scenario.Spec and share one execution path, so
// `explframe run -scenario spec.json` reproduces the byte-identical report
// of the equivalent flag invocation.  The machine the scenario runs on is
// an open axis: -machine selects any registered profile (see
// `explframe list -machines`), and spec files may embed an inline machine.
//
// Exit codes: 0 success, 1 attack failed (key not recovered) or simulator
// error, 2 usage/validation error.
package main

import (
	"fmt"
	"os"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "run":
			os.Exit(cmdRun(args[1:]))
		case "sweep":
			os.Exit(cmdSweep(args[1:]))
		case "submit":
			os.Exit(cmdSubmit(args[1:]))
		case "watch":
			os.Exit(cmdWatch(args[1:]))
		case "list":
			os.Exit(cmdList(args[1:]))
		case "describe":
			os.Exit(cmdDescribe(args[1:]))
		case "help", "-h", "-help", "--help":
			usage(os.Stdout)
			os.Exit(0)
		}
	}
	// Bare legacy invocation: flags only, no subcommand.  -trials > 1 keeps
	// its historical meaning of a sweep.
	os.Exit(cmdLegacy(args))
}

func usage(w *os.File) {
	fmt.Fprint(w, `explframe — ExplFrame attack scenarios on the simulated stack

Subcommands:
  run       run one scenario, print a phase-by-phase report (exit 1 if the
            attack fails to recover the key)
  sweep     run a scenario or campaign over many trials, render the success
            table in any report format
  submit    post a scenario or campaign to a running explframed server and
            print its campaign id (same -scenario sources and overrides)
  watch     stream a submitted campaign's per-trial results as JSON lines
            until it finishes (-report also prints the persisted table)
  list      list scenario presets, cache-probe presets, machine profiles and
            registered ciphers (-machines, -fault-models and -cache-presets
            restrict to one catalogue)
  describe  print the canonical JSON, name and hash of a preset, spec file
            or machine profile ('describe machine <name>' is explicit)

Scenario sources (run and sweep):
  -scenario NAME|FILE   a preset name from 'explframe list' or a JSON spec
                        file; flags set on the command line override the
                        loaded spec field by field
  -machine NAME         run on a registered machine profile (see
                        'explframe list -machines'), overriding the spec's
                        profile or inline machine
  (flags only)          the classic flag interface builds the same spec

Run 'explframe <subcommand> -h' for the flag list.  Invoking explframe with
bare flags and no subcommand behaves exactly like 'run' (or 'sweep' when
-trials > 1), so existing scripts keep working.
`)
}
