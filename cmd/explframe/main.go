// explframe runs one end-to-end ExplFrame attack on the simulated stack and
// prints a phase-by-phase report: templating, frame planting, page frame
// cache steering, re-hammering, and persistent fault analysis.  With
// -trials > 1 it runs a sweep and renders the per-phase success table in
// any report format (-format text|md|csv|json, -out FILE).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"explframe/internal/cipher/registry"
	"explframe/internal/core"
	"explframe/internal/dram"
	"explframe/internal/harness"
	"explframe/internal/report"
	"explframe/internal/rowhammer"
	"explframe/internal/stats"
)

func main() {
	seed := flag.Uint64("seed", 1, "attack seed (weak cells, keys, noise)")
	trials := flag.Int("trials", 1, "independent attack trials to run; >1 prints a success summary instead of one report")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"trial workers for -trials > 1; results are identical at any value (deterministic per-trial streams)")
	cipher := flag.String("cipher", "aes",
		fmt.Sprintf("victim cipher, any registered name or alias (%s)", strings.Join(registry.Names(), ", ")))
	noise := flag.Int("noise", 0, "noise processes churning on the victim CPU")
	noiseOps := flag.Int("noise-ops", 0, "allocation events the noise performs")
	crossCPU := flag.Bool("cross-cpu", false, "pin the victim to a different CPU (expected to defeat the attack)")
	sleep := flag.Bool("sleep", false, "attacker sleeps after planting (expected to defeat the attack)")
	ciphertexts := flag.Int("ciphertexts", 12000, "faulty ciphertext budget for PFA")
	trr := flag.Bool("trr", false, "enable the TRR mitigation (tracker 4, threshold 300)")
	ecc := flag.Bool("ecc", false, "enable SEC-DED ECC")
	manySided := flag.Int("many-sided", 0, "use many-sided hammering with this many decoy rows (TRR bypass)")
	format := flag.String("format", "text", "sweep output format (-trials > 1): text, md, csv or json")
	out := flag.String("out", "", "write the sweep table to this file instead of stdout (-trials > 1)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.NoiseProcs = *noise
	cfg.NoiseOps = *noiseOps
	cfg.AttackerSleeps = *sleep
	cfg.Ciphertexts = *ciphertexts
	if *crossCPU {
		cfg.VictimCPU = 1
	}
	if *trr {
		cfg.Machine.FaultModel.TRR = dram.TRRConfig{Enabled: true, TrackerSize: 4, Threshold: 300}
	}
	if *ecc {
		cfg.Machine.FaultModel.ECC = dram.ECCSecDed
	}
	if *manySided > 0 {
		cfg.Hammer.Mode = rowhammer.ManySided
		cfg.Hammer.Decoys = *manySided
	}
	victim, ok := registry.Get(*cipher)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cipher %q; registered: %s\n", *cipher, strings.Join(registry.Names(), ", "))
		os.Exit(2)
	}
	cfg.VictimCipher = victim.Name()
	cfg.VictimKey = core.DefaultVictimKey(victim)

	if *trials > 1 {
		f, err := report.ParseFormat(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		harness.SetWorkers(*parallel)
		runSweep(cfg, *trials, f, *out)
		return
	}

	fmt.Printf("ExplFrame attack: %s victim, seed %d\n", cfg.VictimCipher, cfg.Seed)
	fmt.Printf("  machine: %d MiB DRAM, %d CPUs, weak-cell density %g\n",
		cfg.Machine.Geometry.TotalBytes()>>20, cfg.Machine.NumCPUs, cfg.Machine.FaultModel.WeakCellDensity)
	fmt.Printf("  attacker: %d MiB buffer on CPU %d; victim: %d pages on CPU %d\n\n",
		cfg.AttackerMemory>>20, cfg.AttackerCPU, cfg.VictimRequestPages, cfg.VictimCPU)

	atk, err := core.NewAttack(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "setup: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	rep, err := atk.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulator error: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("[template] flips found: %d, usable site: %v\n", rep.FlipsTemplated, rep.SiteFound)
	if rep.SiteFound {
		fmt.Printf("           site: page offset %d bit %d (%d->%d), row %d bank %d\n",
			rep.Site.ByteInPage, rep.Site.Bit, rep.Site.From, 1-rep.Site.From,
			rep.Site.Agg.VictimRow, rep.Site.Agg.Bank)
		fmt.Printf("[plant]    released frame PFN %d into the page frame cache\n", rep.PlantedPFN)
		fmt.Printf("[steer]    victim table frame PFN %d — steering %s\n", rep.VictimTablePFN, verdict(rep.SteeringHit))
		fmt.Printf("[rehammer] fault in victim table: %s", verdict(rep.FaultInjected))
		if rep.FaultInjected {
			fmt.Printf(" (table[%#02x])", rep.CorruptIndex)
		}
		fmt.Println()
		if rep.CiphertextsUsed > 0 || rep.KeyRecovered {
			fmt.Printf("[analyse]  %d faulty ciphertexts, residual entropy %.1f bits\n",
				rep.CiphertextsUsed, rep.ResidualEntropy)
		}
	}
	fmt.Printf("[hammer]   %d activations across %d runs\n", rep.Hammer.Activations, rep.Hammer.Pairsentries)
	fmt.Println()
	if rep.Success() {
		fmt.Printf("SUCCESS: recovered key %x in %.1fs\n", rep.RecoveredKey, elapsed.Seconds())
		return
	}
	fmt.Printf("FAILED at phase %q: %s (%.1fs)\n", rep.Phase, rep.FailReason, elapsed.Seconds())
	os.Exit(1)
}

func verdict(b bool) string {
	if b {
		return "HIT"
	}
	return "miss"
}

// runSweep executes n attack trials on the harness pool and renders the
// per-phase success rates as a report table — the multi-trial view of the
// single-run report, in any of the report formats.
func runSweep(cfg core.Config, n int, f report.Format, out string) {
	fmt.Fprintf(os.Stderr, "ExplFrame sweep: %s victim, seed %d, %d trials (workers=%d)\n",
		cfg.VictimCipher, cfg.Seed, n, harness.Workers())
	start := time.Now()
	reports, err := core.RunAttackTrials(cfg, n, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulator error: %v\n", err)
		os.Exit(1)
	}
	var site, steer, fault, key stats.Proportion
	var cts stats.Summary
	for _, rep := range reports {
		site.Observe(rep.SiteFound)
		steer.Observe(rep.SteeringHit)
		fault.Observe(rep.FaultInjected)
		key.Observe(rep.Success())
		if rep.Success() {
			cts.Observe(float64(rep.CiphertextsUsed))
		}
	}

	t := &report.Table{
		ID:    "sweep",
		Title: fmt.Sprintf("per-phase success over %d trials (%s victim, seed %d)", n, cfg.VictimCipher, cfg.Seed),
		Claim: "multi-trial view of the end-to-end pipeline: template → plant → steer → re-hammer → PFA",
		Columns: []report.Column{
			{Name: "phase"}, {Name: "event"},
			{Name: "successes"}, {Name: "trials"}, {Name: "rate", Unit: "fraction"},
		},
	}
	for _, row := range []struct {
		phase, event string
		p            stats.Proportion
	}{
		{"template", "usable site found", site},
		{"steer", "frame steered to victim", steer},
		{"rehammer", "fault planted in table", fault},
		{"analyse", "key recovered", key},
	} {
		t.AddRow(report.Str(row.phase), report.Str(row.event),
			report.Int(row.p.Successes), report.Int(row.p.Trials), report.Float(row.p.Rate(), 3))
	}
	if cts.N() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("ciphertexts to recovery: %s", cts.String()))
	}
	// Wall time and worker count go to stderr, not the table: rendered
	// sweep output must be byte-identical at any -parallel (the repo's
	// determinism contract).
	fmt.Fprintf(os.Stderr, "%d trials in %.1fs (workers=%d)\n", n, time.Since(start).Seconds(), harness.Workers())

	rendered, err := report.Render(t, f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "render: %v\n", err)
		os.Exit(1)
	}
	if out != "" {
		if err := os.WriteFile(out, []byte(rendered), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	} else {
		fmt.Print(rendered)
	}
	if key.Successes == 0 {
		os.Exit(1)
	}
}
