package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"time"

	"explframe/internal/core"
	"explframe/internal/harness"
	"explframe/internal/scenario"
)

// cmdRun executes one scenario.  Attack scenarios with one trial print the
// classic phase-by-phase report; everything else prints a compact summary.
// Exit codes: 0 on success, 1 when an attack fails to recover the key (so
// scripts can branch on the outcome) or the simulator errors, 2 on bad
// usage.
func cmdRun(args []string) int {
	f := newFlags("run")
	if code, ok := f.parse(args); !ok {
		return code
	}
	camp, err := f.campaign()
	if err != nil {
		return fail(err)
	}
	if len(camp.Specs) != 1 {
		return fail(fmt.Errorf("run executes one scenario; %q holds %d specs (use 'explframe sweep' for campaigns)",
			f.scenarioRef, len(camp.Specs)))
	}
	spec := camp.Specs[0]
	if err := spec.Validate(); err != nil {
		return fail(fmt.Errorf("scenario %q invalid:\n%w", spec.Title(), err))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if spec.Kind == scenario.Attack && spec.Trials == 1 {
		return runSingleAttack(ctx, spec)
	}
	return runSummary(ctx, spec, f.parallel)
}

// runSingleAttack prints the phase-by-phase report of one end-to-end run —
// the classic explframe output.
func runSingleAttack(ctx context.Context, spec scenario.Spec) int {
	cfg, err := spec.AttackConfig()
	if err != nil {
		return fail(err)
	}
	fmt.Printf("ExplFrame attack: %s victim, seed %d\n", cfg.VictimCipher, cfg.Seed)
	fmt.Printf("  machine: %d MiB DRAM, %d CPUs, weak-cell density %g\n",
		cfg.Machine.Geometry.TotalBytes()>>20, cfg.Machine.NumCPUs, cfg.Machine.FaultModel.WeakCellDensity)
	fmt.Printf("  attacker: %d MiB buffer on CPU %d; victim: %d pages on CPU %d\n\n",
		cfg.AttackerMemory>>20, cfg.AttackerCPU, cfg.VictimRequestPages, cfg.VictimCPU)

	atk, err := core.NewAttack(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "setup: %v\n", err)
		return 1
	}
	start := time.Now()
	rep, err := atk.RunContext(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "interrupted during phase %q\n", rep.Phase)
			return 1
		}
		fmt.Fprintf(os.Stderr, "simulator error: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)

	fmt.Printf("[template] flips found: %d, usable site: %v\n", rep.FlipsTemplated, rep.SiteFound)
	if rep.SiteFound {
		fmt.Printf("           site: page offset %d bit %d (%d->%d), row %d bank %d\n",
			rep.Site.ByteInPage, rep.Site.Bit, rep.Site.From, 1-rep.Site.From,
			rep.Site.Agg.VictimRow, rep.Site.Agg.Bank)
		fmt.Printf("[plant]    released frame PFN %d into the page frame cache\n", rep.PlantedPFN)
		fmt.Printf("[steer]    victim table frame PFN %d — steering %s\n", rep.VictimTablePFN, verdict(rep.SteeringHit))
		fmt.Printf("[rehammer] fault in victim table: %s", verdict(rep.FaultInjected))
		if rep.FaultInjected {
			fmt.Printf(" (table[%#02x])", rep.CorruptIndex)
		}
		fmt.Println()
		if rep.CiphertextsUsed > 0 || rep.KeyRecovered {
			fmt.Printf("[analyse]  %d faulty ciphertexts, residual entropy %.1f bits\n",
				rep.CiphertextsUsed, rep.ResidualEntropy)
		}
	}
	fmt.Printf("[hammer]   %d activations across %d runs\n", rep.Hammer.Activations, rep.Hammer.Pairsentries)
	fmt.Println()
	if rep.Success() {
		fmt.Printf("SUCCESS: recovered key %x in %.1fs\n", rep.RecoveredKey, elapsed.Seconds())
		return 0
	}
	fmt.Printf("FAILED at phase %q: %s (%.1fs)\n", rep.Phase, rep.FailReason, elapsed.Seconds())
	return 1
}

// runSummary executes a non-attack (or multi-trial) scenario and prints its
// aggregate outcome.  Attack-kind scenarios still gate the exit code on key
// recovery.
func runSummary(ctx context.Context, spec scenario.Spec, parallel int) int {
	fmt.Printf("scenario %s: kind %s, %d trials (seed %d)\n", spec.Title(), spec.Kind, spec.Trials, spec.Seed)
	res, err := scenario.Run(ctx, spec, harness.WithWorkers(parallel))
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario error: %v\n", err)
		return 1
	}
	switch spec.Kind {
	case scenario.Attack:
		st := res.AttackStats()
		fmt.Printf("  site found:    %d/%d (%.3f)\n", st.Site.Successes, st.Site.Trials, st.Site.Rate())
		fmt.Printf("  steering hit:  %d/%d (%.3f)\n", st.Steer.Successes, st.Steer.Trials, st.Steer.Rate())
		fmt.Printf("  fault planted: %d/%d (%.3f)\n", st.Fault.Successes, st.Fault.Trials, st.Fault.Rate())
		fmt.Printf("  key recovered: %d/%d (%.3f)\n", st.Key.Successes, st.Key.Trials, st.Key.Rate())
		if st.Ciphertexts.N() > 0 {
			fmt.Printf("  ciphertexts to recovery: %s\n", st.Ciphertexts.String())
		}
		if st.Key.Successes == 0 {
			return 1
		}
	case scenario.Steering:
		st := res.SteeringStats()
		fmt.Printf("  first-page steering: %d/%d (%.3f)\n", st.FirstPage.Successes, st.FirstPage.Trials, st.FirstPage.Rate())
		fmt.Printf("  planted frames reused anywhere: mean %.2f\n", st.PlantedReused.Mean())
	case scenario.Baseline:
		st := res.BaselineStats()
		fmt.Printf("  table corrupted: %d/%d (%.3f)\n", st.Corrupted.Successes, st.Corrupted.Trials, st.Corrupted.Rate())
		fmt.Printf("  neighbour rows owned in %d/%d trials\n", st.NeighboursOwned, st.Corrupted.Trials)
	case scenario.PFA:
		st := res.PFAStats()
		fmt.Printf("  last-round key recovered: %d/%d (%.3f)\n", st.Recovered.Successes, st.Recovered.Trials, st.Recovered.Rate())
		fmt.Printf("  master key verified:      %d/%d (%.3f)\n", st.MasterOK.Successes, st.MasterOK.Trials, st.MasterOK.Rate())
		if st.Ciphertexts.N() > 0 {
			fmt.Printf("  ciphertexts to recovery: %s\n", st.Ciphertexts.String())
		}
	case scenario.DFA:
		st := res.DFAStats()
		fmt.Printf("  fault model: %s\n", spec.FaultModel().Name())
		fmt.Printf("  unique key recovered: %d/%d (%.3f)\n", st.Recovered.Successes, st.Recovered.Trials, st.Recovered.Rate())
		fmt.Printf("  master key verified:  %d/%d (%.3f)\n", st.MasterOK.Successes, st.MasterOK.Trials, st.MasterOK.Rate())
		if st.Pairs.N() > 0 {
			fmt.Printf("  pairs to recovery: %s\n", st.Pairs.String())
		}
		fmt.Printf("  surviving key space: mean %.1f bits\n", st.KeySpaceBits.Mean())
	case scenario.CacheProbe:
		st := res.CacheProbeStats()
		fmt.Printf("  technique: %s\n", spec.Probe.Technique)
		fmt.Printf("  full first-round key: %d/%d (%.3f)\n", st.FullKey.Successes, st.FullKey.Trials, st.FullKey.Rate())
		fmt.Printf("  key nibbles recovered: mean %.1f\n", st.Nibbles.Mean())
		fmt.Printf("  bytes leaked: mean %.1f\n", st.BytesLeaked.Mean())
		if st.BitErrorRate.N() > 0 {
			fmt.Printf("  channel bit-error rate: mean %.3f\n", st.BitErrorRate.Mean())
		}
	}
	return 0
}

func verdict(b bool) string {
	if b {
		return "HIT"
	}
	return "miss"
}

// cmdLegacy preserves the historical flag-only interface: a single run, or
// a sweep when -trials > 1.
func cmdLegacy(args []string) int {
	probe := newFlags("explframe")
	probe.fs.SetOutput(os.Stderr)
	if code, ok := probe.parse(args); !ok {
		return code
	}
	if probe.trials > 1 {
		return cmdSweep(args)
	}
	return cmdRun(args)
}
