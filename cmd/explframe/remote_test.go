package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"explframe/internal/report"
	"explframe/internal/scenario"
	"explframe/internal/service"
)

// startService boots an in-process explframed for the client subcommands.
func startService(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	srv, err := service.New(service.Config{
		Journal:      filepath.Join(dir, "journal.jsonl"),
		Store:        filepath.Join(dir, "store"),
		TrialWorkers: 2,
		Log:          log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown()
	})
	return hs.URL
}

// submit prints the campaign id to stdout; watch streams one line per
// trial plus the terminal line and, with -report, the validated table.
func TestSubmitAndWatch(t *testing.T) {
	addr := startService(t)
	camp := scenario.Campaign{Name: "remote-fixture", Specs: []scenario.Spec{
		scenario.New(scenario.WithKind(scenario.PFA), scenario.WithCipher("present-80"),
			scenario.WithTrials(3), scenario.WithSeed(11)),
	}}

	var submitOut bytes.Buffer
	if code := runSubmit(addr, camp, &submitOut); code != 0 {
		t.Fatalf("submit exit %d", code)
	}
	id := strings.TrimSpace(submitOut.String())
	if id != service.CampaignID(camp) {
		t.Fatalf("printed id %q", id)
	}

	var watchOut bytes.Buffer
	if code := runWatch(context.Background(), addr, id, true, &watchOut); code != 0 {
		t.Fatalf("watch exit %d", code)
	}
	var lines []string
	sc := bufio.NewScanner(&watchOut)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	// 3 trial lines + terminal line + the report (one indented JSON blob).
	if len(lines) < 4 {
		t.Fatalf("watch printed %d lines", len(lines))
	}
	for i := 0; i < 3; i++ {
		var l service.StreamLine
		if err := json.Unmarshal([]byte(lines[i]), &l); err != nil || l.Outcome == nil {
			t.Fatalf("trial line %d: %q (%v)", i, lines[i], err)
		}
	}
	var terminal service.StreamLine
	if err := json.Unmarshal([]byte(lines[3]), &terminal); err != nil || terminal.Status != "done" {
		t.Fatalf("terminal line: %q (%v)", lines[3], err)
	}
	reportJSON := strings.Join(lines[4:], "\n")
	if _, err := report.FromJSON([]byte(reportJSON)); err != nil {
		t.Fatalf("-report output is not a valid table: %v", err)
	}

	// watch on an unknown id fails with exit 1, not a hang.
	if code := runWatch(context.Background(), addr, "c-nope", false, &bytes.Buffer{}); code != 1 {
		t.Fatalf("watch of unknown id exited %d", code)
	}
}
