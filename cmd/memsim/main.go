// memsim is an interactive-ish lab for the physical memory allocator: it
// runs an allocation workload and prints /proc/buddyinfo-style zone state,
// per-CPU page frame cache contents, and a steering demonstration.
package main

import (
	"flag"
	"fmt"
	"os"

	"explframe/internal/core"
	"explframe/internal/kernel"
	"explframe/internal/mm"
	"explframe/internal/stats"
	"explframe/internal/vm"
)

func main() {
	seed := flag.Uint64("seed", 1, "workload seed")
	ops := flag.Int("ops", 20000, "churn operations")
	steer := flag.Bool("steer", false, "run a steering demonstration instead of churn")
	flag.Parse()

	if *steer {
		demoSteering(*seed)
		return
	}

	m, err := kernel.NewMachine(kernel.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pm := m.Phys()
	fmt.Println("zones after boot:")
	fmt.Print(pm)

	p, err := m.Spawn("churn", 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng := stats.NewRNG(*seed)
	var live []vm.VirtAddr
	for i := 0; i < *ops; i++ {
		if rng.Bool(0.55) || len(live) == 0 {
			pages := 1 + rng.Intn(8)
			va, err := p.Mmap(uint64(pages) * vm.PageSize)
			if err != nil {
				continue
			}
			if err := p.Touch(va, uint64(pages)*vm.PageSize); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for k := 0; k < pages; k++ {
				live = append(live, va+vm.VirtAddr(k)*vm.PageSize)
			}
		} else {
			j := rng.Intn(len(live))
			if err := p.Munmap(live[j], vm.PageSize); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}

	fmt.Printf("\nafter %d ops (%d live pages):\n", *ops, len(live))
	fmt.Print(pm)
	for _, zt := range []mm.ZoneType{mm.ZoneDMA, mm.ZoneDMA32, mm.ZoneNormal} {
		if !pm.HasZone(zt) {
			continue
		}
		st := pm.Stats(zt)
		fmt.Printf("zone %-7s splits=%d coalesces=%d pcpHits=%d pcpRefills=%d pcpSpills=%d frag@8=%.3f\n",
			zt, st.Splits, st.Coalesces, st.PCPHits, st.PCPRefills, st.PCPSpills,
			pm.ExternalFragmentation(zt, 8))
	}
	fmt.Printf("cpu0 page frame cache: %d frames (DMA32)\n", pm.PCPCount(0, mm.ZoneDMA32))
	if err := pm.CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("buddy invariants: OK")
}

// demoSteering shows the Section V exploit mechanics with PFNs.
func demoSteering(seed uint64) {
	cfg := core.DefaultSteeringConfig()
	cfg.Seed = seed
	res, err := core.RunSteeringTrial(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("steering demonstration (attacker and victim share CPU 0):")
	fmt.Printf("  attacker released frame(s): %v (last = hottest)\n", res.Planted)
	fmt.Printf("  victim page frames (touch order): %v\n", res.VictimPFNs)
	fmt.Printf("  first-page steering: %v, planted frames reused: %d\n",
		res.FirstPageHit, res.PlantedReused)
}
