// report regenerates the repository's results book: docs/RESULTS.md (every
// experiment table as GitHub Markdown with paper-comparison badges) and
// docs/results.json (the same tables in typed, machine-readable form).
//
// Usage:
//
//	report                  # regenerate docs/RESULTS.md + docs/results.json
//	report -check           # regenerate in memory and fail on drift (CI)
//	report -only E7,E10     # print selected tables to stdout (markdown)
//	report -seed 7          # change the global experiment seed
//
// The book is deterministic: one seed produces one byte-exact book at any
// worker count, which is what lets CI regenerate it and fail on drift, the
// same contract as the golden text tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"explframe/internal/experiments"
	"explframe/internal/harness"
	"explframe/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 1, "global experiment seed")
	outDir := flag.String("out", "docs", "directory receiving RESULTS.md and results.json")
	check := flag.Bool("check", false, "regenerate in memory and exit non-zero if the committed book drifted")
	only := flag.String("only", "", "comma-separated experiment ids to print to stdout as markdown (no files written)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"trial workers per experiment; the book is identical at any value (deterministic per-trial streams)")
	flag.Parse()

	if *only != "" {
		if err := printOnly(*only, *seed, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	tables := make([]*report.Table, 0, len(experiments.All()))
	for _, r := range experiments.All() {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", r.ID, r.Name)
		tb, err := r.Run(*seed, harness.WithWorkers(*parallel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		tables = append(tables, tb)
	}
	book, err := report.BuildBook(*seed, tables)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	files := []struct {
		path, want string
	}{
		{filepath.Join(*outDir, "RESULTS.md"), book.Markdown},
		{filepath.Join(*outDir, "results.json"), book.JSON},
	}
	if *check {
		drift := false
		for _, f := range files {
			have, err := os.ReadFile(f.path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "missing %s (regenerate with `go run ./cmd/report`): %v\n", f.path, err)
				drift = true
				continue
			}
			if d := report.FirstDiff(string(have), f.want); d != "" {
				fmt.Fprintf(os.Stderr, "%s drifted from the regenerated book: %s\n", f.path, d)
				drift = true
			}
		}
		if drift {
			fmt.Fprintln(os.Stderr, "\nthe committed results book no longer matches the code; run `go run ./cmd/report` and commit the diff")
			os.Exit(1)
		}
		fmt.Println("results book is up to date")
		return
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range files {
		if err := os.WriteFile(f.path, []byte(f.want), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", f.path, len(f.want))
	}
}

// printOnly renders the selected experiments to stdout as Markdown.
func printOnly(ids string, seed uint64, parallel int) error {
	want := map[string]bool{}
	for _, id := range strings.Split(ids, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	ran := 0
	for _, r := range experiments.All() {
		if !want[r.ID] {
			continue
		}
		tb, err := r.Run(seed, harness.WithWorkers(parallel))
		if err != nil {
			return fmt.Errorf("%s failed: %w", r.ID, err)
		}
		md, err := report.Markdown(tb)
		if err != nil {
			return err
		}
		fmt.Println(md)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", ids)
	}
	return nil
}
