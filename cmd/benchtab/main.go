// benchtab regenerates every experiment table in the evaluation index
// (E1–E15).
//
// Usage:
//
//	benchtab            # run everything
//	benchtab -exp E3    # one experiment
//	benchtab -seed 7    # change the global seed
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"explframe/internal/experiments"
	"explframe/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (e.g. E3); empty = all")
	seed := flag.Uint64("seed", 1, "global experiment seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"trial workers per experiment; tables are identical at any value (deterministic per-trial streams)")
	flag.Parse()
	harness.SetWorkers(*parallel)

	runners := experiments.All()
	ran := 0
	for _, r := range runners {
		if *exp != "" && !strings.EqualFold(*exp, r.ID) {
			continue
		}
		start := time.Now()
		tb, err := r.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		fmt.Printf("   (%s in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; known ids:", *exp)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, " %s", r.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
