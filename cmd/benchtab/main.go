// benchtab regenerates every experiment table in the evaluation index
// (E1–E18) and maintains the machine-profile bench baseline.
//
// Usage:
//
//	benchtab                 # run everything, aligned text to stdout
//	benchtab -exp E3         # one experiment
//	benchtab -seed 7         # change the global seed
//	benchtab -format md      # render text, md, csv or json
//	benchtab -out tables.md  # write to a file instead of stdout
//
//	benchtab -bench-machines BENCH_machines.json        # re-time every machine profile
//	benchtab -check-bench-machines BENCH_machines.json  # parse/validate the snapshot (CI smoke)
//
//	benchtab -bench-machines BENCH_machines.json -append-trajectory BENCH_trajectory.json
//	                                                    # ...and append the run (plus per-cipher
//	                                                    # scalar/bitsliced core timings and per-technique
//	                                                    # cache-probe timings) to the trajectory
//	benchtab -check-trajectory BENCH_trajectory.json    # validate the trajectory, the bitsliced
//	                                                    # speedup floors and the zero-alloc hammer
//	                                                    # and probe contracts (CI gate)
//
// With more than one experiment selected, json emits a single JSON array
// (one element per table) so the output stays parseable as one document;
// csv is a single-table format and requires -exp.  Timing lines go to
// stderr so machine formats stay clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"explframe/internal/experiments"
	"explframe/internal/harness"
	"explframe/internal/report"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (e.g. E3); empty = all")
	seed := flag.Uint64("seed", 1, "global experiment seed")
	format := flag.String("format", "text", "output format: text, md, csv or json")
	out := flag.String("out", "", "write rendered tables to this file instead of stdout")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"trial workers per experiment; tables are identical at any value (deterministic per-trial streams)")
	benchMachines := flag.String("bench-machines", "",
		"re-time HammerLoop and one attack trial on every registered machine profile, write the JSON snapshot to this file and exit")
	checkBenchMachines := flag.String("check-bench-machines", "",
		"parse and validate a bench-machines snapshot (shape only, not timings) and exit")
	appendTrajectory := flag.String("append-trajectory", "",
		"with -bench-machines: also append the run, with per-cipher scalar/bitsliced core timings and per-technique cache-probe timings, as one timestamped point to this trajectory file")
	checkTrajectory := flag.String("check-trajectory", "",
		"validate a bench trajectory (shape, append-only timestamps, machine/cipher/probe-technique coverage) plus the bitsliced speedup floors and the steady-state zero-alloc hammer and probe contracts, and exit")
	flag.Parse()

	if *appendTrajectory != "" && *benchMachines == "" {
		fmt.Fprintln(os.Stderr, "-append-trajectory needs -bench-machines (the run being appended)")
		os.Exit(2)
	}
	if *benchMachines != "" {
		os.Exit(runBenchMachines(*benchMachines, *appendTrajectory))
	}
	if *checkBenchMachines != "" {
		os.Exit(runCheckBenchMachines(*checkBenchMachines))
	}
	if *checkTrajectory != "" {
		os.Exit(runCheckTrajectory(*checkTrajectory))
	}

	f, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runners := experiments.All()
	var selected []experiments.Runner
	for _, r := range runners {
		if *exp == "" || strings.EqualFold(*exp, r.ID) {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; known ids:", *exp)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, " %s", r.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	if f == report.FormatCSV && len(selected) > 1 {
		fmt.Fprintln(os.Stderr, "csv renders one table per document; pass -exp to select it (or use -format json for the full set)")
		os.Exit(2)
	}

	dst := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer file.Close()
		dst = file
	}

	// Multi-table json becomes one array so the whole output parses as a
	// single document.
	jsonArray := f == report.FormatJSON && len(selected) > 1
	if jsonArray {
		fmt.Fprintln(dst, "[")
	}
	for i, r := range selected {
		start := time.Now()
		tb, err := r.Run(*seed, harness.WithWorkers(*parallel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		rendered, err := report.Render(tb, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s render: %v\n", r.ID, err)
			os.Exit(1)
		}
		if jsonArray {
			if i > 0 {
				fmt.Fprintln(dst, ",")
			}
			fmt.Fprint(dst, strings.TrimSuffix(rendered, "\n"))
		} else {
			fmt.Fprint(dst, rendered)
			fmt.Fprintln(dst)
		}
		fmt.Fprintf(os.Stderr, "   (%s in %.1fs)\n", r.ID, time.Since(start).Seconds())
	}
	if jsonArray {
		fmt.Fprintln(dst, "\n]")
	}
}
