package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"explframe/internal/cache"
	"explframe/internal/machine"
	"explframe/internal/scenario"
)

// hammerTimingActivations sizes the HammerLoop timing sample: large enough
// to amortise setup, small enough that timing five profiles stays seconds.
const hammerTimingActivations = 400_000

// runBenchMachines re-times every registered machine profile — the raw
// HammerLoop activation cost through the full kernel/DRAM stack, and one
// seed-1 end-to-end attack trial — and writes the machine.BenchFile
// snapshot.  Timings are host-dependent by nature; the snapshot anchors
// the bench trajectory and its *shape* is what CI checks.  With a
// trajectory path, the same entries are additionally appended as one
// timestamped point to the append-only history.
func runBenchMachines(path, trajectoryPath string) int {
	f := machine.BenchFile{
		Schema: machine.BenchSchema,
		Note:   "regenerate with: go run ./cmd/benchtab -bench-machines BENCH_machines.json",
		Host:   fmt.Sprintf("%s/%s, %d cpus", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
	}
	for _, name := range machine.Names() {
		ms := machine.MustGet(name)
		entry := machine.BenchEntry{Machine: name, Mapper: ms.MapperName(), MiB: ms.Geometry.TotalBytes() >> 20}

		nsPerAct, err := timeHammerLoop(ms)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: hammer timing: %v\n", name, err)
			return 1
		}
		entry.HammerNsPerActivation = nsPerAct

		spec := scenario.New(scenario.WithProfile(scenario.Profile(name)))
		start := time.Now()
		res, err := scenario.Run(context.Background(), spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: attack trial: %v\n", name, err)
			return 1
		}
		entry.AttackTrialMs = float64(time.Since(start).Microseconds()) / 1000
		entry.KeyRecovered = res.AttackStats().Key.Successes > 0

		fmt.Fprintf(os.Stderr, "%-14s %6.1f ns/act, attack trial %8.1f ms (key recovered: %v)\n",
			name, entry.HammerNsPerActivation, entry.AttackTrialMs, entry.KeyRecovered)
		f.Entries = append(f.Entries, entry)
	}
	data, err := f.EncodeJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d profiles)\n", path, len(f.Entries))
	if trajectoryPath != "" {
		ciphers, err := machine.MeasureCipherCores()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, e := range ciphers {
			fmt.Fprintf(os.Stderr, "%-14s %7.1f ns/encryption scalar, %6.1f bitsliced (%d lanes, %.1fx)\n",
				e.Cipher, e.ScalarNsPerEncryption, e.BitslicedNsPerEncryption, e.Lanes,
				e.ScalarNsPerEncryption/e.BitslicedNsPerEncryption)
		}
		probes, err := machine.MeasureProbeLoops()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, e := range probes {
			fmt.Fprintf(os.Stderr, "%-14s %7.1f ns/probe measurement\n", e.Technique, e.NsPerMeasurement)
		}
		return appendTrajectoryPoint(trajectoryPath, f, ciphers, probes)
	}
	return 0
}

// appendTrajectoryPoint extends (or starts) the append-only trajectory with
// the machine entries, cipher-core timings and cache-probe timings of a
// just-completed bench run.
func appendTrajectoryPoint(path string, f machine.BenchFile, ciphers []machine.CipherBenchEntry, probes []machine.ProbeBenchEntry) int {
	prev, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	out, err := machine.AppendPoint(prev, f.Host, f.Entries, ciphers, probes, time.Now())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	traj, err := machine.ParseTrajectoryFile(out)
	if err != nil { // cannot happen: AppendPoint validates — but never write+lie
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "appended point %d to %s\n", len(traj.Points), path)
	return 0
}

// timeHammerLoop measures one activation's cost on the machine: two
// attacker pages hammered in the translation-cached loop, the same
// primitive every templating and re-hammer phase spends its time in.
// The workload comes from machine.NewHammerBench, shared with
// BenchmarkHammerLoopPerMachine so snapshot and benchmark cannot drift.
func timeHammerLoop(ms machine.Spec) (float64, error) {
	proc, vas, err := machine.NewHammerBench(ms, 1)
	if err != nil {
		return 0, err
	}
	// An aggressor set larger than the activation budget would truncate
	// rounds to zero — HammerLoop would issue nothing and the division
	// below would be 0/0.  Clamp to one round and divide by the
	// activations actually issued, not the nominal budget.
	rounds := hammerTimingActivations / len(vas)
	if rounds < 1 {
		rounds = 1
	}
	start := time.Now()
	if err := proc.HammerLoop(vas, rounds); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds*len(vas)), nil
}

// runCheckBenchMachines is the CI smoke: the checked-in snapshot must
// strictly parse and name only registered machines.
func runCheckBenchMachines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	f, err := machine.ParseBenchFile(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: schema %d, %d profiles, ok\n", path, f.Schema, len(f.Entries))
	return 0
}

// runCheckTrajectory is the CI regression gate: the checked-in trajectory
// must strictly parse (append-only timestamps, registry-exact latest point
// including its cipher-core and cache-probe rows), the latest point's
// recorded cipher rows must show the bitsliced cores pulling their weight
// (at least 4x over scalar on AES-128, never slower elsewhere), the same
// must hold when the cores are re-measured live on this host, and both hot
// paths — the hammer loop on every registered machine and the probe loop of
// every registered technique — must still be allocation-free in steady
// state, the property the trajectory's timings are meaningless without.
func runCheckTrajectory(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	f, err := machine.ParseTrajectoryFile(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: schema %d, %d points (latest %s), ok\n",
		path, f.Schema, len(f.Points), f.Points[len(f.Points)-1].Time)
	fail := checkCipherRows(f.Points[len(f.Points)-1].Ciphers, "recorded")
	if machine.RaceEnabled {
		fmt.Fprintln(os.Stderr, "race detector active: skipping the live cipher and zero-alloc gates (instrumentation skews both)")
		return fail
	}
	live, err := machine.MeasureCipherCores()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if checkCipherRows(live, "live") != 0 {
		fail = 1
	}
	for _, name := range machine.Names() {
		allocs, err := machine.HammerLoopSteadyStateAllocs(machine.MustGet(name), 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: alloc gate: %v\n", name, err)
			return 1
		}
		status := "ok"
		if allocs != 0 {
			status = "FAIL"
			fail = 1
		}
		fmt.Fprintf(os.Stderr, "%-14s steady-state hammer allocs/run: %.2f %s\n", name, allocs, status)
	}
	for _, tech := range cache.Techniques() {
		allocs, err := machine.ProbeLoopSteadyStateAllocs(tech)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: probe alloc gate: %v\n", tech, err)
			return 1
		}
		status := "ok"
		if allocs != 0 {
			status = "FAIL"
			fail = 1
		}
		fmt.Fprintf(os.Stderr, "%-14s steady-state probe allocs/run: %.2f %s\n", tech, allocs, status)
	}
	return fail
}

// checkCipherRows applies the bitsliced speedup gate to one set of
// cipher-core timing rows: AES-128's table-heavy scalar path must be beaten
// at least 4x, and no cipher's batch path may be slower than its scalar
// path.  label distinguishes the checked-in rows from a live re-measure.
func checkCipherRows(rows []machine.CipherBenchEntry, label string) int {
	fail := 0
	for _, e := range rows {
		ratio := e.ScalarNsPerEncryption / e.BitslicedNsPerEncryption
		floor := 1.0
		if e.Cipher == "aes-128" {
			floor = 4.0
		}
		status := "ok"
		if ratio < floor {
			status = "FAIL"
			fail = 1
		}
		fmt.Fprintf(os.Stderr, "%-14s %s bitsliced speedup: %5.1fx (floor %.0fx) %s\n",
			e.Cipher, label, ratio, floor, status)
	}
	return fail
}
